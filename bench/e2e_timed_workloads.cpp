/**
 * @file
 * End-to-end timed workloads: the same code path that computes
 * *verified* ciphertexts reports accelerator cycles, by running the
 * functional library under the simulated-accelerator timing backend
 * and reading its TimingLedger.
 *
 * For each workload the bench
 *   1. executes it functionally (and checks the decrypted result),
 *   2. prints the per-op / per-kernel cycle breakdown the ledger
 *      collected (the live counterpart of Fig. 13/14),
 *   3. cross-checks the ledger's kernel element totals against the
 *      static workload/ kernel graphs, which must agree within 1%
 *      after the documented conventions:
 *        Ip      graphs count broadcast input elements; the ledger
 *                counts executed MAC lanes (x #accumulators)
 *        Intt    HMult realigns its tensor outputs to the coefficient
 *                domain before accumulating (+2(l+1)N, folded into
 *                the next op by the analytic graph)
 *        ModAdd  the live CMux performs diff + accumulate (x2); the
 *                PBS graph models the accumulate
 *
 * Build & run:  ./bench_e2e_timed_workloads   (exits nonzero on a
 * cross-check failure, so CI can gate on it)
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "accel/configs.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "bench/bench_util.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "tfhe/gates.h"
#include "workload/ckks_ops.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using sim::KernelType;

namespace {

int g_failures = 0;

SimBackend &
installSim(sim::Machine machine)
{
    auto &reg = BackendRegistry::instance();
    reg.use(std::make_unique<SimBackend>(reg.create("serial"),
                                         std::move(machine)));
    SimBackend *sb = activeSimBackend();
    if (sb == nullptr) {
        std::fprintf(stderr, "failed to install sim backend\n");
        std::exit(1);
    }
    return *sb;
}

/** One cross-check row: live ledger total vs adjusted graph total. */
void
check(const sim::TimingLedger &ledger, KernelType type, double expect,
      const char *note)
{
    double live = static_cast<double>(ledger.elements(type));
    double delta =
        expect > 0 ? (live - expect) / expect * 100.0 : live;
    bool ok = std::fabs(delta) <= 1.0;
    std::printf("  %-14s %14.0f %14.0f %+8.3f%%  %s%s\n",
                sim::kernelTypeName(type), live, expect, delta,
                ok ? "ok" : "MISMATCH", note);
    if (!ok) {
        ++g_failures;
    }
}

void
ckksHmult()
{
    bench::header("CKKS HMult — live execution on Trinity (4 clusters)");
    SimBackend &sb = installSim(accel::trinityCkks(4));

    auto params = CkksParams::testSmall();
    auto ctx = std::make_shared<CkksContext>(params);
    CkksKeyGenerator keygen(ctx, 42);
    CkksEncoder encoder(ctx);
    CkksEncryptor enc(ctx, keygen.makePublicKey(), 43);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();

    std::vector<double> xs(ctx->params().slots(), 1.5);
    std::vector<double> ys(ctx->params().slots(), -0.5);
    size_t level = params.maxLevel;
    auto ct_x = enc.encrypt(encoder.encodeReal(xs, level, 0));
    auto ct_y = enc.encrypt(encoder.encodeReal(ys, level, 0));
    // Tensor inputs arrive in the evaluation domain (as the analytic
    // graph assumes); do the alignment outside the measured region.
    ct_x.c0.toEval();
    ct_x.c1.toEval();
    ct_y.c0.toEval();
    ct_y.c1.toEval();

    // --- single HMult, cross-checked against hmultGraph ------------
    sb.ledger().reset();
    auto ct_prod = eval.multiply(ct_x, ct_y, relin);

    workload::CkksShape shape{params.n, level, params.maxLevel,
                              params.dnum};
    auto graph = workload::hmultGraph(shape);
    u64 n = params.n;
    u64 nq = level + 1;
    std::printf("  %-14s %14s %14s %9s\n", "kernel", "live elems",
                "graph elems", "delta");
    const auto &ledger = sb.ledger();
    auto elems = [&](KernelType t) {
        return static_cast<double>(graph.totalElements(t));
    };
    check(ledger, KernelType::Ntt, elems(KernelType::Ntt), "");
    check(ledger, KernelType::Intt,
          elems(KernelType::Intt) + 2.0 * static_cast<double>(nq * n),
          "  (+2(l+1)N tensor-output realignment)");
    check(ledger, KernelType::Bconv, elems(KernelType::Bconv), "");
    check(ledger, KernelType::Ip, 2.0 * elems(KernelType::Ip),
          "  (x2 evk accumulators)");
    check(ledger, KernelType::ModMul, elems(KernelType::ModMul), "");
    check(ledger, KernelType::ModAdd, elems(KernelType::ModAdd), "");

    double cycles = ledger.latencyCycles();
    bench::row("Trinity (live ledger)", "HMult latency",
               sb.seconds(cycles) * 1e6, "us", "model");
    bench::row("Trinity (static graph)", "HMult latency",
               sb.machine().seconds(
                   sim::schedule(graph, sb.machine()).makespanCycles) *
                   1e6,
               "us", "model");
    bench::note("live = sequential batch charges incl. HBM overlap; "
                "static = list-scheduled DAG");

    // --- HMult chain + rescales: per-op attribution ----------------
    sb.ledger().reset();
    auto ct = eval.multiply(ct_x, ct_y, relin);
    eval.rescaleInPlace(ct);
    auto ct2 = eval.square(ct, relin);
    eval.rescaleInPlace(ct2);

    // Snapshot the measured region before decryption adds charges.
    auto scoped = sb.ledger().byScope();
    double compute = sb.ledger().computeCycles();
    double transfer = sb.ledger().transferCycles();

    auto vals = encoder.decode(enc.decrypt(ct2, keygen.secretKey()));
    double want = (1.5 * -0.5) * (1.5 * -0.5);
    if (std::fabs(vals[0].real() - want) > 1e-3) {
        std::printf("  VERIFY FAILED: slot0 = %f, want %f\n",
                    vals[0].real(), want);
        ++g_failures;
    } else {
        std::printf("  verified: (1.5 * -0.5)^2 = %.4f\n",
                    vals[0].real());
    }
    std::printf("\n  per-op cycle breakdown "
                "(HMult -> Rescale -> HSquare -> Rescale):\n");
    for (const auto &[scope, kernels] : scoped) {
        double op_cycles = 0;
        for (const auto &[type, cell] : kernels) {
            if (type != KernelType::HbmXfer &&
                type != KernelType::NocXfer) {
                op_cycles += cell.cycles;
            }
        }
        std::printf("    %-10s %12.0f cycles  %8.2f us\n",
                    scope.empty() ? "(other)" : scope.c_str(),
                    op_cycles, sb.seconds(op_cycles) * 1e6);
    }
    std::printf("  end-to-end: %.0f compute / %.0f transfer cycles "
                "-> %.2f us\n",
                compute, transfer,
                sb.seconds(compute > transfer ? compute : transfer) *
                    1e6);
}

void
tfhePbs()
{
    bench::header("TFHE gate bootstrap — live execution on Trinity");
    SimBackend &sb = installSim(accel::trinityTfhe(4));

    auto params = TfheParams::testTiny();
    TfheGateBootstrapper gb(params, 44);

    sb.ledger().reset();
    auto out = gb.gateNand(gb.encryptBit(true), gb.encryptBit(false));
    if (!gb.decryptBit(out)) {
        std::printf("  VERIFY FAILED: NAND(1,0) != 1\n");
        ++g_failures;
    } else {
        std::printf("  verified: NAND(1,0) = 1\n");
    }

    auto graph = workload::pbsGraph(params);
    const auto &ledger = sb.ledger();
    auto elems = [&](KernelType t) {
        return static_cast<double>(graph.totalElements(t));
    };
    std::printf("  %-14s %14s %14s %9s\n", "kernel", "live elems",
                "graph elems", "delta");
    check(ledger, KernelType::Ntt, elems(KernelType::Ntt), "");
    check(ledger, KernelType::Intt, elems(KernelType::Intt), "");
    check(ledger, KernelType::Rotate, elems(KernelType::Rotate), "");
    check(ledger, KernelType::Decomp, elems(KernelType::Decomp), "");
    check(ledger, KernelType::ModSwitch, elems(KernelType::ModSwitch),
          "");
    check(ledger, KernelType::SampleExtract,
          elems(KernelType::SampleExtract), "");
    check(ledger, KernelType::Ip,
          elems(KernelType::Ip) * static_cast<double>(params.k + 1),
          "  (x(k+1) output components)");
    check(ledger, KernelType::ModAdd,
          2.0 * elems(KernelType::ModAdd), "  (x2 CMux diff+acc)");
    bench::note("LweKS uses the graph's digit-density convention and "
                "is reported, not checked:");
    std::printf("  %-14s %14llu %14llu\n", "LweKS",
                static_cast<unsigned long long>(
                    ledger.elements(KernelType::LweKs)),
                static_cast<unsigned long long>(
                    graph.totalElements(KernelType::LweKs)));

    double cycles = ledger.latencyCycles();
    bench::row("Trinity (live ledger)", "PBS latency",
               sb.seconds(cycles) * 1e6, "us", "model");
    bench::row("Trinity (static graph)", "PBS latency",
               sb.machine().seconds(
                   sim::schedule(graph, sb.machine()).makespanCycles) *
                   1e6,
               "us", "model");
    std::printf("  end-to-end: %.0f compute / %.0f transfer cycles\n",
                ledger.computeCycles(), ledger.transferCycles());
    // Paper-parameter context from the same machine model.
    for (const auto &p :
         {TfheParams::setI(), TfheParams::setII(),
          TfheParams::setIII()}) {
        bench::row("Trinity (static graph)",
                   "PBS throughput " + p.name,
                   workload::pbsThroughputOps(sb.machine(), p), "op/s",
                   "model");
    }
}

} // namespace

int
main()
{
    std::printf("== e2e timed workloads: functional execution, "
                "accelerator cycles ==\n");
    ckksHmult();
    tfhePbs();
    BackendRegistry::instance().select("serial");
    if (g_failures != 0) {
        std::printf("\n%d cross-check failure(s)\n", g_failures);
        return 1;
    }
    std::printf("\nall ledger-vs-graph cross-checks within 1%%\n");
    return 0;
}
