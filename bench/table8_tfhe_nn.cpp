/**
 * @file
 * Table VIII: NN-20 / NN-50 / NN-100 MNIST inference latency at
 * 128-bit security (Set-III), single inference (latency-bound PBS).
 */

#include "accel/configs.h"
#include "accel/reported.h"
#include "bench/bench_util.h"
#include "workload/apps.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Table VIII: NN-x inference latency (128-bit security)");
    for (const auto &r : accel::table8Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    auto m = accel::trinityTfhe(4);
    auto p = TfheParams::setIII();
    for (size_t depth : {20u, 50u, 100u}) {
        row("Trinity (this model)", "NN-" + std::to_string(depth),
            workload::nnLatencyMs(m, p, depth), "ms", "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("NN-", 0) == 0) {
            row("Trinity (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note("model: 92 PBS per layer, dependency-bound blind rotation, "
         "linear layers on the VPU");
    return 0;
}
