/**
 * @file
 * Shared formatting helpers for the table/figure reproduction benches.
 * Every bench prints the paper's rows side by side with this repo's
 * measured/modelled values; rows that come from published papers are
 * tagged `reported`.
 */

#ifndef TRINITY_BENCH_BENCH_UTIL_H
#define TRINITY_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace trinity {
namespace bench {

/**
 * Common bench CLI contract, so CI drives every binary the same way:
 *   --smoke        short iteration counts — wall-clock-bounded rows
 *                  for the per-PR perf artifact, not publication runs
 *   --json=PATH    additionally record every row() as JSON at PATH
 * Positional args keep their per-bench meaning.
 */
struct BenchArgs
{
    bool smoke = false;
    std::string jsonPath;
    std::vector<std::string> positional;
};

/** Rows captured for the JSON report when --json is given. */
inline std::vector<std::string> &
jsonRows()
{
    static std::vector<std::string> rows;
    return rows;
}

inline bool &
jsonActive()
{
    static bool active = false;
    return active;
}

inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            args.smoke = true;
        } else if (a.rfind("--json=", 0) == 0) {
            args.jsonPath = a.substr(7);
            jsonActive() = true;
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
row(const std::string &scheme, const std::string &metric, double value,
    const std::string &unit, const std::string &source)
{
    std::printf("%-26s %-22s %14.4g %-6s [%s]\n", scheme.c_str(),
                metric.c_str(), value, unit.c_str(), source.c_str());
    if (jsonActive()) {
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "    {\"scheme\": \"%s\", \"metric\": \"%s\", "
                      "\"value\": %.8g, \"unit\": \"%s\", "
                      "\"source\": \"%s\"}",
                      scheme.c_str(), metric.c_str(), value,
                      unit.c_str(), source.c_str());
        jsonRows().push_back(buf);
    }
}

/**
 * Write the captured rows as one JSON object keyed by bench name —
 * CI merges the per-bench files into BENCH_ci.json with `jq -s add`
 * and uploads it per PR, so the perf trajectory is a downloadable
 * artifact rather than something scraped out of logs.
 */
inline void
writeJsonReport(const BenchArgs &args, const std::string &benchName)
{
    if (args.jsonPath.empty()) {
        return;
    }
    std::FILE *f = std::fopen(args.jsonPath.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n",
                     args.jsonPath.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"%s\": [\n", benchName.c_str());
    for (size_t i = 0; i < jsonRows().size(); ++i) {
        std::fprintf(f, "%s%s\n", jsonRows()[i].c_str(),
                     i + 1 < jsonRows().size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

inline void
note(const std::string &text)
{
    std::printf("  # %s\n", text.c_str());
}

/** Wall-clock timer for the live CPU baseline measurements. */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bench
} // namespace trinity

#endif // TRINITY_BENCH_BENCH_UTIL_H
