/**
 * @file
 * Shared formatting helpers for the table/figure reproduction benches.
 * Every bench prints the paper's rows side by side with this repo's
 * measured/modelled values; rows that come from published papers are
 * tagged `reported`.
 */

#ifndef TRINITY_BENCH_BENCH_UTIL_H
#define TRINITY_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <string>

namespace trinity {
namespace bench {

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
row(const std::string &scheme, const std::string &metric, double value,
    const std::string &unit, const std::string &source)
{
    std::printf("%-26s %-22s %14.4g %-6s [%s]\n", scheme.c_str(),
                metric.c_str(), value, unit.c_str(), source.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  # %s\n", text.c_str());
}

/** Wall-clock timer for the live CPU baseline measurements. */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bench
} // namespace trinity

#endif // TRINITY_BENCH_BENCH_UTIL_H
