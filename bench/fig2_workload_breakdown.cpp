/**
 * @file
 * Fig. 2: computational breakdown (modular multiplies) between NTT and
 * MAC for CKKS KeySwitch (L=23, dnum=3) and TFHE PBS Set-I/II/III.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

int
main()
{
    header("Fig. 2: NTT vs MAC computational breakdown (%)");
    std::printf("%-18s %10s %10s   %s\n", "Workload", "NTT", "MAC",
                "(paper NTT share)");
    CkksShape ks{1ULL << 16, 23, 23, 3};
    auto b = keySwitchBreakdown(ks);
    std::printf("%-18s %9.1f%% %9.1f%%   (59.2%%)\n", "CKKS KeySwitch",
                100 * b.nttShare(), 100 * (1 - b.nttShare()));
    const char *paper[] = {"75.6%", "74.5%", "76.3%"};
    int i = 0;
    for (const auto &p : {TfheParams::setI(), TfheParams::setII(),
                          TfheParams::setIII()}) {
        auto pb = pbsBreakdown(p);
        std::printf("%-18s %9.1f%% %9.1f%%   (%s)\n",
                    ("PBS " + p.name).c_str(), 100 * pb.nttShare(),
                    100 * (1 - pb.nttShare()), paper[i++]);
    }
    note("counts derived from the Algorithm 1 / Algorithm 2 kernel "
         "volumes; NTT multiplies = (N/2)log2(N) per transform");
    return 0;
}
