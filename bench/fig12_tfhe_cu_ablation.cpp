/**
 * @file
 * Fig. 12: utilization of Trinity-TFHE w/o CU (NTTU + fixed systolic
 * array) vs w/ CU (NTTU + CU) when executing PBS.
 */

#include <cstdio>

#include "accel/configs.h"
#include "bench/bench_util.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

int
main()
{
    header("Fig. 12: TFHE engine utilization w/o CU vs w/ CU (%)");
    auto wo = accel::trinityTfheWithoutCu();
    auto w = accel::trinityTfheWithCu();
    std::printf("%-10s %22s %22s\n", "Set", "w/o CU (NTTU+SA)",
                "w/ CU (NTTU+CU)");
    double gain_sum = 0;
    int cnt = 0;
    for (const auto &p : {TfheParams::setI(), TfheParams::setII(),
                          TfheParams::setIII()}) {
        // Steady-state (batched) utilization: busy cycles relative to
        // the bottleneck pool — the Table VII execution mode.
        auto g = pbsGraph(p);
        auto util_of = [&](const sim::Machine &m, const char *pool) {
            auto busy = sim::poolBusy(g, m);
            double bottleneck = sim::bottleneckCycles(g, m);
            auto it = busy.find(pool);
            return it == busy.end() ? 0.0 : it->second / bottleneck;
        };
        double uwo = (util_of(wo, "NTT") + util_of(wo, "MAC")) / 2.0;
        double uw = (util_of(w, "NTT") + util_of(w, "MAC")) / 2.0;
        std::printf("%-10s %21.1f%% %21.1f%%\n", p.name.c_str(),
                    100 * uwo, 100 * uw);
        gain_sum += uw / uwo;
        ++cnt;
    }
    note("average utilization gain: " +
         std::to_string(gain_sum / cnt) + "x (paper: 1.45x)");
    return 0;
}
