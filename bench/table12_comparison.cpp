/**
 * @file
 * Table XII: comparison with state-of-the-art FHE accelerators —
 * scheme support, word length, frequency, memory, technology, area,
 * power.
 */

#include <cstdio>

#include "accel/area.h"
#include "bench/bench_util.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Table XII: Comparison with state-of-the-art accelerators");
    std::printf("%-14s %-22s %-8s %-8s %-12s %-12s %-10s %-10s\n",
                "Design", "Schemes", "Word", "Freq", "Off-chip BW",
                "On-chip Cap", "Area(mm2)", "Power(W)");
    std::printf("%-14s %-22s %-8s %-8s %-12s %-12s %-10s %-10s\n",
                "CraterLake", "CKKS", "28-bit", "1GHz", "1TB/s",
                "282MB", "472.3(12nm)", "320");
    std::printf("%-14s %-22s %-8s %-8s %-12s %-12s %-10s %-10s\n",
                "SHARP", "CKKS", "36-bit", "1GHz", "1TB/s", "198MB",
                "178.8(7nm)", "-");
    std::printf("%-14s %-22s %-8s %-8s %-12s %-12s %-10s %-10s\n",
                "Morphling", "TFHE", "32-bit", "1.2GHz", "310GB/s",
                "11MB", "74(28nm)", "53.0");
    accel::AreaModel m(4);
    char area[32], power[32];
    std::snprintf(area, sizeof(area), "%.2f(7nm)", m.totalArea());
    std::snprintf(power, sizeof(power), "%.2f", m.totalPower());
    std::printf("%-14s %-22s %-8s %-8s %-12s %-12s %-10s %-10s\n",
                "Trinity", "CKKS;TFHE;conversion", "36-bit", "1GHz",
                "1TB/s", "191MB", area, power);
    note("all non-Trinity rows reported from the cited papers; the "
         "Trinity row comes from this repo's area model");
    note("power vs CraterLake: " +
         std::to_string(100.0 * (1.0 - m.totalPower() /
                                           accel::AreaModel::
                                               craterlakePowerW())) +
         "% reduction (paper: 28.5%)");
    return 0;
}
