/**
 * @file
 * Fig. 9: utilization of the F1-like fixed NTT vs Trinity's
 * NTTU+CU configurable NTT across polynomial lengths.
 */

#include <cstdio>

#include "accel/ntt_util.h"
#include "bench/bench_util.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Fig. 9: NTT utilization, F1-like vs Trinity");
    std::printf("%-8s %12s %12s\n", "N", "F1-like", "Trinity");
    double f1_sum = 0, tr_sum = 0;
    int cnt = 0;
    for (unsigned lg = 8; lg <= 16; ++lg) {
        size_t n = 1ULL << lg;
        double f1 = accel::f1LikeNttUtil(n);
        double tr = accel::trinityNttUtil(n);
        std::printf("2^%-6u %12.3f %12.3f\n", lg, f1, tr);
        f1_sum += f1;
        tr_sum += tr;
        ++cnt;
    }
    note("average improvement: " + std::to_string(tr_sum / f1_sum) +
         "x (paper: 1.2x)");
    return 0;
}
