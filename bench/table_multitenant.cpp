/**
 * @file
 * Multi-tenant serving under key-cache pressure: a closed-loop load
 * generator drives a ShardedPbsServer with Zipf-distributed tenant
 * popularity while the per-shard KeyStores run at a budget smaller
 * than the tenants' combined working set, so lazy materialization,
 * LRU eviction, and refault all happen under live traffic. Reported
 * per engine (serial/threads/simd): saturation OPS, per-shard
 * request-latency p50/p99/p999, keystore hit rate and evictions —
 * plus one fused tenant batch priced on the Trinity-TFHE machine
 * model. Every decrypted result is verified against the submitted
 * bit, so the rows double as an evict/refault bit-correctness check.
 *
 * Positional args: [tenants] [shards] [clients] [requests-per-client]
 * (defaults depend on --smoke). TRINITY_KEYSTORE_BYTES overrides the
 * default budget of half the combined tenant working set.
 */

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "accel/configs.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "bench/bench_util.h"
#include "common/modarith.h"
#include "obs/metrics.h"
#include "runtime/sharded_server.h"

using namespace trinity;
using namespace trinity::bench;

namespace {

/** One tenant's client-side state: durable keys plus a pre-encrypted
 *  request pool (the context RNG is not thread-safe, so every
 *  ciphertext a client thread submits is minted up front). */
struct Tenant
{
    runtime::TenantKeyMaterial keys;
    std::vector<LweCiphertext> pool;
    std::vector<bool> bits;
};

/** Zipf(s=1) popularity over @p n tenants as an inverse-CDF table. */
std::vector<double>
zipfCdf(size_t n)
{
    std::vector<double> cdf(n);
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
        total += 1.0 / static_cast<double>(i + 1);
        cdf[i] = total;
    }
    for (double &c : cdf) {
        c /= total;
    }
    return cdf;
}

size_t
sampleZipf(const std::vector<double> &cdf, std::mt19937_64 &rng)
{
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    size_t lo = 0;
    size_t hi = cdf.size() - 1;
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (cdf[mid] < u) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

struct LoadResult
{
    double ops = 0;       ///< completed requests per second
    u64 wrong = 0;        ///< decrypt mismatches (must be 0)
    u64 completed = 0;
    runtime::ShardedStats stats;
};

/** Closed-loop run: @p clients threads, each submitting @p perClient
 *  Zipf-sampled tenant requests and blocking on every future. */
LoadResult
runLoad(const std::shared_ptr<TfheContext> &ctx,
        std::vector<Tenant> &tenants, size_t shards, size_t budget,
        size_t clients, size_t perClient)
{
    runtime::ShardedOptions opts;
    opts.shards = shards;
    opts.keystoreBudgetBytes = budget;
    opts.server.maxBatch = 8;
    opts.server.maxWaitUs = 200;
    runtime::KeyStore::Provider provider =
        [&tenants](runtime::TenantId t)
        -> const runtime::TenantKeyMaterial & {
        return tenants[static_cast<size_t>(t)].keys;
    };
    std::vector<double> cdf = zipfCdf(tenants.size());
    LoadResult res;
    std::vector<u64> wrong(clients, 0);
    Timer t;
    {
        runtime::ShardedPbsServer server(ctx, provider, opts);
        std::vector<std::thread> workers;
        workers.reserve(clients);
        for (size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                std::mt19937_64 rng(0x5eedULL + c);
                for (size_t i = 0; i < perClient; ++i) {
                    size_t tid = sampleZipf(cdf, rng);
                    Tenant &tn = tenants[tid];
                    size_t slot = (c * perClient + i) % tn.pool.size();
                    LweCiphertext out =
                        server.submit(tid, tn.pool[slot]).get();
                    u64 phase = ctx->lwePhase(out, tn.keys.lweKey);
                    bool bit = centeredRep(phase, ctx->q()) > 0;
                    if (bit != tn.bits[slot]) {
                        ++wrong[c];
                    }
                }
            });
        }
        for (auto &w : workers) {
            w.join();
        }
        res.stats = server.stats();
    }
    double ms = t.elapsedMs();
    res.completed = clients * perClient;
    res.ops = 1000.0 * static_cast<double>(res.completed) / ms;
    for (u64 w : wrong) {
        res.wrong += w;
    }
    return res;
}

/** Per-shard latency tails from the obs registry histograms (reset
 *  before each engine run; the shard servers feed them live). */
void
resetShardHistograms(size_t shards)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    for (size_t i = 0; i < shards; ++i) {
        std::string p = "pbs_server.shard" + std::to_string(i);
        reg.histogram(p + ".request_latency_ns").reset();
        reg.histogram(p + ".queue_wait_ns").reset();
        reg.histogram(p + ".batch_size").reset();
    }
}

void
reportShardTails(const std::string &engine, size_t shards)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    const double to_ms = 1e-6;
    for (size_t i = 0; i < shards; ++i) {
        std::string p = "pbs_server.shard" + std::to_string(i);
        obs::Histogram &lat = reg.histogram(p + ".request_latency_ns");
        std::string metric = "shard" + std::to_string(i) + " latency";
        row(engine + " p50", metric,
            static_cast<double>(lat.percentile(0.50)) * to_ms, "ms",
            "measured");
        row(engine + " p99", metric,
            static_cast<double>(lat.percentile(0.99)) * to_ms, "ms",
            "measured");
        row(engine + " p999", metric,
            static_cast<double>(lat.percentile(0.999)) * to_ms, "ms",
            "measured");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    // Smoke keeps CI wall-clock-bounded on the tiny parameter set;
    // the full run uses Set-I so each tenant costs paper-scale tens
    // of MB and materialization is a real NTT sweep.
    TfheParams params =
        args.smoke ? TfheParams::testTiny() : TfheParams::setI();
    size_t tenants = args.smoke ? 8 : 6;
    size_t shards = 2;
    size_t clients = 4;
    size_t perClient = args.smoke ? 24 : 32;
    if (args.positional.size() > 0) {
        tenants = std::stoul(args.positional[0]);
    }
    if (args.positional.size() > 1) {
        shards = std::stoul(args.positional[1]);
    }
    if (args.positional.size() > 2) {
        clients = std::stoul(args.positional[2]);
    }
    if (args.positional.size() > 3) {
        perClient = std::stoul(args.positional[3]);
    }

    header("Multi-tenant sharded PBS serving (" + params.name + ")");
    size_t perTenant = runtime::KeyStore::residentBytesFor(params);
    // Default pressure point: the fleet can hold half the tenants —
    // the popular (Zipf head) tenants stay resident, the tail
    // evicts/refaults continuously.
    size_t budget = runtime::KeyStore::budgetFromEnv(
        perTenant * std::max<size_t>(1, tenants / 2));
    row("working set per tenant", params.name,
        static_cast<double>(perTenant) / 1e6, "MB", "measured");
    row("keystore budget (total)", params.name,
        static_cast<double>(budget) / 1e6, "MB", "configured");
    note("tenants=" + std::to_string(tenants) +
         " shards=" + std::to_string(shards) +
         " clients=" + std::to_string(clients) +
         " requests/client=" + std::to_string(perClient) +
         " (Zipf s=1 popularity)");

    auto ctx = std::make_shared<TfheContext>(params, 0xdecaf);
    TfheBootstrapper boot(ctx);
    std::vector<Tenant> fleet(tenants);
    for (size_t i = 0; i < tenants; ++i) {
        fleet[i].keys = runtime::TenantKeyMaterial::generate(*ctx, boot);
        size_t poolSize = 16;
        for (size_t j = 0; j < poolSize; ++j) {
            bool b = ((i + j) % 3) != 1;
            fleet[i].bits.push_back(b);
            u64 mu = ctx->params().q / 8;
            u64 m = b ? mu : ctx->modulus().neg(mu);
            fleet[i].pool.push_back(
                ctx->lweEncrypt(m, fleet[i].keys.lweKey));
        }
    }

    auto &breg = BackendRegistry::instance();
    std::string prev = activeBackend().name();
    for (const char *engine : {"serial", "threads", "simd"}) {
        breg.select(engine);
        resetShardHistograms(shards);
        LoadResult res = runLoad(ctx, fleet, shards, budget, clients,
                                 perClient);
        std::string name(engine);
        row(name + " saturation", params.name + " closed loop",
            res.ops, "OPS", "measured");
        reportShardTails(name, shards);
        row(name + " keystore hit rate", params.name,
            res.stats.keystore.hitRate(), "frac", "measured");
        row(name + " keystore evictions", params.name,
            static_cast<double>(res.stats.keystore.evictions), "evt",
            "measured");
        row(name + " shed+rejected", params.name,
            static_cast<double>(res.stats.serving.shed +
                                res.stats.serving.rejected),
            "req", "measured");
        // The load loop decrypt-verifies every response against the
        // submitted bit — 0 means evict/refault never corrupted a
        // batch.
        row(name + " wrong results", params.name,
            static_cast<double>(res.wrong), "req", "measured");
    }
    breg.select(prev);

    // One fused tenant batch priced on the Trinity-TFHE machine
    // model: the accelerator-terms cost of a shard executing one
    // tenant group at B=8 (keys pre-materialized — serving steady
    // state, not the fault path).
    {
        breg.use(std::make_unique<SimBackend>(breg.create("serial"),
                                              accel::trinityTfhe(4)));
        SimBackend &sb = *activeSimBackend();
        runtime::KeyStore store(
            *ctx,
            [&fleet](runtime::TenantId t)
                -> const runtime::TenantKeyMaterial & {
                return fleet[static_cast<size_t>(t)].keys;
            },
            0, "keystore.simprice");
        auto keys = store.acquire(0);
        const size_t B = 8;
        runtime::PbsBatch batch;
        for (size_t j = 0; j < B; ++j) {
            batch.add(fleet[0].pool[j], keys->signTv);
        }
        sb.ledger().reset();
        runtime::runPbsBatchChunked(boot, batch, keys->bsk, keys->ksk,
                                    0);
        double ops =
            static_cast<double>(B) /
            sb.seconds(sb.ledger().overlappedLatencyCycles());
        row("Trinity-TFHE tenant batch B=8", params.name, ops, "OPS",
            "sim-priced");
        breg.select(prev);
    }

    note("closed-loop load: every request waits for its result; "
         "tenant -> shard routing is key-affine (splitmix64), so a "
         "tenant's keys materialize in exactly one shard's store");
    writeJsonReport(args, "table_multitenant");
    return 0;
}
