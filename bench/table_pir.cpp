/**
 * @file
 * OnionPIR-style PIR serving throughput vs database size. A client
 * mints one encrypted query per trial; the server answers it through
 * the full pipeline (oblivious expansion, RLWE->GSW conversion,
 * CommandStream first-dimension fold, CMux tree, modulus switch) and
 * every response is decrypt-verified against the addressed record, so
 * the rows double as an end-to-end correctness check. Reported per
 * engine (serial/threads/simd): queries/sec and the one-time
 * database materialization cost, across a resident-size sweep that
 * tops out above 1 GB in the full run — plus one query priced on the
 * Trinity-TFHE machine model.
 *
 * Two size axes are reported honestly: "raw" is the packed plaintext
 * the tenant registered (records * N * logP / 8); "resident" is the
 * serving working set the fold actually streams (lb gadget-scaled
 * NTT-domain copies per record, 64-bit coefficients), the OnionPIR
 * preprocessed-database blow-up.
 *
 * Positional args: none. --smoke runs the tiny parameter set only.
 * TRINITY_PIR_FOLD_CHUNK tunes fold chunking; TRINITY_BACKEND is
 * ignored (the bench drives its own engine sweep).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "accel/configs.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "backend/simd_kernels.h"
#include "bench/bench_util.h"
#include "pir/pir.h"

using namespace trinity;
using namespace trinity::bench;

namespace {

struct EngineRun
{
    double qps = 0;
    double materializeMs = 0;
    u64 wrong = 0;
};

/** Materialize the serving form and answer @p nq queries on the
 *  active engine, decrypt-verifying every response. */
EngineRun
runEngine(pir::PirClient &client, const pir::PirQueryKeys &keys,
          const pir::PirDatabase &db, size_t nq)
{
    const pir::PirParams &pp = db.params();
    pir::PirEngine engine(client.sharedCtx(), pp);
    EngineRun res;

    Timer mt;
    pir::ResidentPirDb resident = materializePirDb(client.ctx(), db);
    res.materializeMs = mt.elapsedMs();

    // Queries spread across the index space, minted up front (the
    // context RNG is not thread-safe and keygen noise is the client's
    // business, not the serving path's).
    std::vector<size_t> indices;
    std::vector<pir::PirQuery> queries;
    for (size_t i = 0; i < nq; ++i) {
        size_t index = (i * (pp.records() / nq)) + i % pp.dim1;
        index %= pp.records();
        indices.push_back(index);
        queries.push_back(client.makeQuery(index));
    }

    Timer qt;
    std::vector<pir::PirResponse> resps;
    for (size_t i = 0; i < nq; ++i) {
        resps.push_back(engine.answer(resident, keys, queries[i]));
    }
    double ms = qt.elapsedMs();
    res.qps = 1000.0 * static_cast<double>(nq) / ms;

    for (size_t i = 0; i < nq; ++i) {
        if (client.decode(resps[i]) != db.record(indices[i])) {
            ++res.wrong;
        }
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);

    // Sweep: resident serving set doubles per step; the full run's
    // last point crosses 1 GB (dim1=64, 2^7 columns, N=2048, lb=8).
    std::vector<pir::PirParams> sweep;
    if (args.smoke) {
        sweep.push_back(pir::PirParams::testTiny());
    } else {
        for (u32 d = 4; d <= 7; ++d) {
            sweep.push_back(pir::PirParams::standard().withShape(64, d));
        }
    }

    header(std::string("PIR serving throughput vs database size") +
           (args.smoke ? " (smoke)" : ""));
    note("every response decrypt-verified against the addressed "
         "record; qps is single-query closed loop (no pipelining "
         "across queries)");

    auto &breg = BackendRegistry::instance();
    std::string prev = activeBackend().name();
    u64 wrong = 0;
    double gateSerialQps = 0;
    double gateSimdQps = 0;

    for (size_t s = 0; s < sweep.size(); ++s) {
        const pir::PirParams &pp = sweep[s];
        double residentMb =
            static_cast<double>(pp.residentBytes()) / 1e6;
        double rawMb = static_cast<double>(pp.rawBytes()) / 1e6;
        char tagBuf[64];
        std::snprintf(tagBuf, sizeof tagBuf, "%.0fMB", residentMb);
        std::string tag(tagBuf);

        pir::PirClient client(pp, 0xbead + s);
        pir::PirQueryKeys keys = client.makeQueryKeys();
        pir::PirDatabase db = pir::PirDatabase::random(pp, 77 + s);
        size_t nq = args.smoke ? 3 : (pp.records() >= 4096 ? 1 : 2);

        row("database", "pir.resident " + tag, residentMb, "MB",
            "measured");
        row("database", "pir.raw " + tag, rawMb, "MB", "measured");
        note("records=" + std::to_string(pp.records()) + " (" +
             std::to_string(pp.dim1) + " x 2^" +
             std::to_string(pp.gswDims) + "), N=" +
             std::to_string(pp.tfhe.bigN) + ", logP=" +
             std::to_string(pp.logP) + ", queries=" +
             std::to_string(nq));

        for (const char *engine : {"serial", "threads", "simd"}) {
            breg.select(engine);
            EngineRun res = runEngine(client, keys, db, nq);
            breg.select("serial");
            wrong += res.wrong;
            std::string name(engine);
            row(name, "pir.qps " + tag, res.qps, "q/s", "measured");
            row(name, "pir.materialize " + tag, res.materializeMs,
                "ms", "measured");
            if (s == 0) {
                if (name == "serial") {
                    gateSerialQps = res.qps;
                } else if (name == "simd") {
                    gateSimdQps = res.qps;
                }
            }
        }
    }

    // Regression-gate rows (first sweep point): single-thread ratios
    // transfer across runners, so these are what CI diffs against the
    // committed baseline. The simd row carries the dispatched level's
    // name (the gate skips rows missing on either side).
    if (gateSerialQps > 0) {
        row("serial", "pir.qps.speedup", 1.0, "x", "measured");
        row(std::string("simd-") +
                simd::levelName(simd::resolveLevel()),
            "pir.qps.speedup", gateSimdQps / gateSerialQps, "x",
            "measured");
    }

    // One query priced on the Trinity-TFHE machine model: the fold's
    // DAG (decompose -> NTT -> MAC chains) plus expansion/CMux kernel
    // events, scheduled in virtual time with overlap.
    {
        const pir::PirParams &pp = sweep[0];
        pir::PirClient client(pp, 0xfeed);
        pir::PirQueryKeys keys = client.makeQueryKeys();
        pir::PirDatabase db = pir::PirDatabase::random(pp, 99);
        breg.use(std::make_unique<SimBackend>(breg.create("serial"),
                                              accel::trinityTfhe(4)));
        SimBackend &sb = *activeSimBackend();
        pir::PirEngine engine(client.sharedCtx(), pp);
        pir::ResidentPirDb resident =
            materializePirDb(client.ctx(), db);
        size_t index = pp.records() / 3;
        pir::PirQuery query = client.makeQuery(index);
        sb.ledger().reset();
        pir::PirResponse resp = engine.answer(resident, keys, query);
        double qps =
            1.0 / sb.seconds(sb.ledger().overlappedLatencyCycles());
        breg.select(prev);
        if (client.decode(resp) != db.record(index)) {
            ++wrong;
        }
        char tagBuf[64];
        std::snprintf(tagBuf, sizeof tagBuf, "%.0fMB",
                      static_cast<double>(pp.residentBytes()) / 1e6);
        row("Trinity-TFHE", std::string("pir.qps ") + tagBuf, qps,
            "q/s", "sim-priced");
    }

    row("all engines", "pir.wrong", static_cast<double>(wrong), "q",
        "measured");
    writeJsonReport(args, "table_pir");
    return wrong == 0 ? 0 : 1;
}
