/**
 * @file
 * Table X: HE3DB TPC-H Query 6 latency — TFHE filter + scheme
 * conversion + CKKS aggregation — on unified Trinity vs the split
 * SHARP+Morphling system.
 */

#include "accel/reported.h"
#include "bench/bench_util.h"
#include "workload/apps.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Table X: Hybrid-scheme HE3DB Query 6 latency (s)");
    for (const auto &r : accel::table10Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    for (size_t rows_n : {4096u, 16384u}) {
        std::string metric = "HE3DB-" + std::to_string(rows_n);
        row("SHARP+Morphling (model)", metric,
            workload::he3dbSharpMorphlingSeconds(rows_n), "s",
            "simulated");
        row("Trinity (this model)", metric,
            workload::he3dbTrinitySeconds(rows_n), "s", "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("HE3DB", 0) == 0) {
            row("Trinity (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    double ratio = workload::he3dbSharpMorphlingSeconds(4096) /
                   workload::he3dbTrinitySeconds(4096);
    note("modelled split-system penalty at 4096 rows: " +
         std::to_string(ratio) + "x (paper: 13.42x average)");
    return 0;
}
