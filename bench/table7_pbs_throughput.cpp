/**
 * @file
 * Table VII: TFHE PBS throughput (operations per second) under the
 * Table IV parameter sets. Trinity, its CU ablations, and Morphling
 * are modelled; the CPU rows are *measured live* by running this
 * repository's functional NTT-based PBS on the host — per call
 * (sequential Algorithm 2) and through the serving runtime's batched
 * lockstep pipeline at B in {1, 8, 32}. One fused batch is also
 * priced on the Trinity-TFHE machine model so the per-batch
 * amortization shows in accelerator terms.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "accel/configs.h"
#include "accel/reported.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "bench/bench_util.h"
#include "runtime/batched_pbs.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

namespace {

/** Iteration budgets; --smoke shrinks them so the CI artifact run is
 *  wall-clock-bounded while keeping every row measured, not skipped. */
struct Budget
{
    int minIters;
    double budgetMs;
    int maxIters;
};

/** Sequential per-call baseline: warm twice, then time until the
 *  figure is backed by enough iterations not to be startup noise. */
double
measureCpuPbsOps(TfheGateBootstrapper &gb, const Budget &bd)
{
    LweCiphertext out = gb.bootstrapSign(gb.encryptBit(true));
    out = gb.bootstrapSign(out);
    Timer t;
    int iters = 0;
    while (iters < bd.minIters ||
           (t.elapsedMs() < bd.budgetMs && iters < bd.maxIters)) {
        out = gb.bootstrapSign(out);
        ++iters;
    }
    return 1000.0 * iters / t.elapsedMs();
}

/** Batched throughput through the serving runtime at batch size B.
 *  If @p sim_ops is non-null, additionally prices one fused batch on
 *  the Trinity-TFHE machine model (latency = max(compute, transfer)
 *  ledger cycles) and returns the amortized accelerator OPS. */
double
measureBatchedPbsOps(TfheGateBootstrapper &gb,
                     const runtime::BatchedBootstrapper &bb, size_t B,
                     const Budget &bd, double *sim_ops)
{
    std::vector<LweCiphertext> cts;
    cts.reserve(B);
    for (size_t i = 0; i < B; ++i) {
        cts.push_back(gb.encryptBit(i % 2 == 0));
    }
    std::vector<LweCiphertext> out = bb.bootstrapSignBatch(cts); // warm
    Timer t;
    int batches = 0;
    while (batches < bd.minIters ||
           (t.elapsedMs() < bd.budgetMs && batches < bd.maxIters)) {
        out = bb.bootstrapSignBatch(out);
        ++batches;
    }
    double ops = 1000.0 * static_cast<double>(batches * B) /
                 t.elapsedMs();
    if (sim_ops != nullptr) {
        // Re-run one fused batch under a real SimBackend: the
        // Ntt/Intt events only exist behind the ObservedBackend
        // decorator, so a bare observer would miss most of the work.
        auto &reg = BackendRegistry::instance();
        std::string prev = activeBackend().name();
        reg.use(std::make_unique<SimBackend>(reg.create("serial"),
                                             accel::trinityTfhe(4)));
        SimBackend &sb = *activeSimBackend();
        sb.ledger().reset();
        out = bb.bootstrapSignBatch(out);
        *sim_ops = static_cast<double>(B) /
                   sb.seconds(sb.ledger().latencyCycles());
        reg.select(prev);
    }
    return ops;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    // Smoke mode (the CI perf artifact): Set-I only, smaller batches,
    // tight iteration budgets — every row still measured live.
    const Budget seq_budget = args.smoke ? Budget{2, 150.0, 8}
                                         : Budget{8, 1000.0, 64};
    const Budget batch_budget = args.smoke ? Budget{1, 200.0, 4}
                                           : Budget{2, 800.0, 16};
    const size_t max_b = args.smoke ? 8 : 32;
    std::vector<size_t> batch_sizes = {1, 8};
    if (max_b > 8) {
        batch_sizes.push_back(max_b);
    }

    header("Table VII: Throughput for TFHE PBS (OPS)");
    for (const auto &r : accel::table7Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    std::vector<TfheParams> sets = {TfheParams::setI()};
    if (!args.smoke) {
        sets.push_back(TfheParams::setII());
        sets.push_back(TfheParams::setIII());
    }
    for (const auto &p : sets) {
        TfheGateBootstrapper gb(p, 90210);
        runtime::BatchedBootstrapper bb(gb);
        double baseline = measureCpuPbsOps(gb, seq_budget);
        row("Baseline-CPU (this host)", p.name, baseline, "OPS",
            "measured");
        double best_ops = 0;
        for (size_t B : batch_sizes) {
            double sim_ops = 0;
            double ops = measureBatchedPbsOps(
                gb, bb, B, batch_budget,
                B == max_b ? &sim_ops : nullptr);
            row("Batched-CPU B=" + std::to_string(B), p.name, ops, "OPS",
                "measured");
            if (B == max_b) {
                best_ops = ops;
                row("Trinity-TFHE batched B=" + std::to_string(B),
                    p.name, sim_ops, "OPS", "sim-priced");
            }
        }
        char speedup[128];
        std::snprintf(speedup, sizeof speedup,
                      "%s: batched B=%zu speedup over per-call baseline "
                      "= %.2fx",
                      p.name.c_str(), max_b, best_ops / baseline);
        note(speedup);
    }
    for (const auto &p : sets) {
        row("Morphling (this model)", p.name,
            pbsThroughputOps(accel::morphling(), p), "OPS",
            "simulated");
        row("Morphling_1GHz (model)", p.name,
            pbsThroughputOps(accel::morphling1GHz(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/o CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithoutCu(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/ CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithCu(), p), "OPS",
            "simulated");
        row("Trinity (this model)", p.name,
            pbsThroughputOps(accel::trinityTfhe(4), p), "OPS",
            "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("PBS", 0) == 0) {
            row(r.scheme + " (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note(std::string("host CPU rows run this repo's NTT-based PBS on "
                     "the active engine (TRINITY_BACKEND=") +
         activeBackend().name() +
         "); batched rows run the serving runtime's lockstep pipeline "
         "(src/runtime/), which shares each bootstrap-key GGSW across "
         "the whole batch");
    writeJsonReport(args, "table7_pbs_throughput");
    return 0;
}
