/**
 * @file
 * Table VII: TFHE PBS throughput (operations per second) under the
 * Table IV parameter sets. Trinity, its CU ablations, and Morphling
 * are modelled; the CPU rows are *measured live* by running this
 * repository's functional NTT-based PBS on the host — per call
 * (sequential Algorithm 2) and through the serving runtime's batched
 * lockstep pipeline at B in {1, 8, 32}. One fused batch is also
 * priced on the Trinity-TFHE machine model so the per-batch
 * amortization shows in accelerator terms.
 */

#include "accel/configs.h"
#include "accel/reported.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "bench/bench_util.h"
#include "runtime/batched_pbs.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

namespace {

/** Sequential per-call baseline: warm twice, then time until the
 *  figure is backed by enough iterations not to be startup noise. */
double
measureCpuPbsOps(TfheGateBootstrapper &gb)
{
    LweCiphertext out = gb.bootstrapSign(gb.encryptBit(true));
    out = gb.bootstrapSign(out);
    Timer t;
    int iters = 0;
    while (iters < 8 || (t.elapsedMs() < 1000.0 && iters < 64)) {
        out = gb.bootstrapSign(out);
        ++iters;
    }
    return 1000.0 * iters / t.elapsedMs();
}

/** Batched throughput through the serving runtime at batch size B.
 *  If @p sim_ops is non-null, additionally prices one fused batch on
 *  the Trinity-TFHE machine model (latency = max(compute, transfer)
 *  ledger cycles) and returns the amortized accelerator OPS. */
double
measureBatchedPbsOps(TfheGateBootstrapper &gb,
                     const runtime::BatchedBootstrapper &bb, size_t B,
                     double *sim_ops)
{
    std::vector<LweCiphertext> cts;
    cts.reserve(B);
    for (size_t i = 0; i < B; ++i) {
        cts.push_back(gb.encryptBit(i % 2 == 0));
    }
    std::vector<LweCiphertext> out = bb.bootstrapSignBatch(cts); // warm
    Timer t;
    size_t batches = 0;
    while (batches < 2 || (t.elapsedMs() < 800.0 && batches < 16)) {
        out = bb.bootstrapSignBatch(out);
        ++batches;
    }
    double ops = 1000.0 * static_cast<double>(batches * B) /
                 t.elapsedMs();
    if (sim_ops != nullptr) {
        // Re-run one fused batch under a real SimBackend: the
        // Ntt/Intt events only exist behind the ObservedBackend
        // decorator, so a bare observer would miss most of the work.
        auto &reg = BackendRegistry::instance();
        std::string prev = activeBackend().name();
        reg.use(std::make_unique<SimBackend>(reg.create("serial"),
                                             accel::trinityTfhe(4)));
        SimBackend &sb = *activeSimBackend();
        sb.ledger().reset();
        out = bb.bootstrapSignBatch(out);
        *sim_ops = static_cast<double>(B) /
                   sb.seconds(sb.ledger().latencyCycles());
        reg.select(prev);
    }
    return ops;
}

} // namespace

int
main()
{
    header("Table VII: Throughput for TFHE PBS (OPS)");
    for (const auto &r : accel::table7Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    const TfheParams sets[] = {TfheParams::setI(), TfheParams::setII(),
                               TfheParams::setIII()};
    for (const auto &p : sets) {
        TfheGateBootstrapper gb(p, 90210);
        runtime::BatchedBootstrapper bb(gb);
        double baseline = measureCpuPbsOps(gb);
        row("Baseline-CPU (this host)", p.name, baseline, "OPS",
            "measured");
        double b32_ops = 0;
        for (size_t B : {size_t(1), size_t(8), size_t(32)}) {
            double sim_ops = 0;
            double ops = measureBatchedPbsOps(gb, bb, B,
                                              B == 32 ? &sim_ops : nullptr);
            row("Batched-CPU B=" + std::to_string(B), p.name, ops, "OPS",
                "measured");
            if (B == 32) {
                b32_ops = ops;
                row("Trinity-TFHE batched B=32", p.name, sim_ops, "OPS",
                    "sim-priced");
            }
        }
        char speedup[128];
        std::snprintf(speedup, sizeof speedup,
                      "%s: batched B=32 speedup over per-call baseline "
                      "= %.2fx",
                      p.name.c_str(), b32_ops / baseline);
        note(speedup);
    }
    for (const auto &p : sets) {
        row("Morphling (this model)", p.name,
            pbsThroughputOps(accel::morphling(), p), "OPS",
            "simulated");
        row("Morphling_1GHz (model)", p.name,
            pbsThroughputOps(accel::morphling1GHz(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/o CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithoutCu(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/ CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithCu(), p), "OPS",
            "simulated");
        row("Trinity (this model)", p.name,
            pbsThroughputOps(accel::trinityTfhe(4), p), "OPS",
            "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("PBS", 0) == 0) {
            row(r.scheme + " (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note("host CPU rows use this repo's scalar NTT-based PBS; batched "
         "rows run the serving runtime's lockstep pipeline "
         "(src/runtime/), which shares each bootstrap-key GGSW across "
         "the whole batch");
    return 0;
}
