/**
 * @file
 * Table VII: TFHE PBS throughput (operations per second) under the
 * Table IV parameter sets. Trinity, its CU ablations, and Morphling
 * are modelled; the CPU rows are *measured live* by running this
 * repository's functional NTT-based PBS on the host — per call
 * (sequential Algorithm 2) and through the serving runtime's batched
 * lockstep pipeline at B in {1, 8, 32}. One fused batch is also
 * priced on the Trinity-TFHE machine model so the per-batch
 * amortization shows in accelerator terms.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "accel/configs.h"
#include "accel/reported.h"
#include "backend/command_stream.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "backend/thread_pool_backend.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "runtime/batched_pbs.h"
#include "runtime/pbs_server.h"
#include "sim/machine.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

namespace {

/** Iteration budgets; --smoke shrinks them so the CI artifact run is
 *  wall-clock-bounded while keeping every row measured, not skipped. */
struct Budget
{
    int minIters;
    double budgetMs;
    int maxIters;
};

/** Sequential per-call baseline: warm twice, then time until the
 *  figure is backed by enough iterations not to be startup noise. */
double
measureCpuPbsOps(TfheGateBootstrapper &gb, const Budget &bd)
{
    LweCiphertext out = gb.bootstrapSign(gb.encryptBit(true));
    out = gb.bootstrapSign(out);
    Timer t;
    int iters = 0;
    while (iters < bd.minIters ||
           (t.elapsedMs() < bd.budgetMs && iters < bd.maxIters)) {
        out = gb.bootstrapSign(out);
        ++iters;
    }
    return 1000.0 * iters / t.elapsedMs();
}

/** Sim pricing of one fused batch: amortized accelerator OPS plus
 *  the sequential-charge and stream-overlapped makespans. */
struct SimPricing
{
    double ops = 0;
    double seqCycles = 0;
    double overlappedCycles = 0;
};

/** One full-width lockstep execution of @p cts: the bench sweeps the
 *  lockstep width B explicitly, so bypass run()'s preferredBatch()
 *  chunking (a B=32 row must measure 32-wide lockstep, not four
 *  8-wide chunks). */
std::vector<LweCiphertext>
runFullWidth(const runtime::BatchedBootstrapper &bb,
             const std::vector<LweCiphertext> &cts)
{
    runtime::PbsBatch batch;
    for (const auto &ct : cts) {
        batch.add(ct, bb.signTestVector());
    }
    return bb.runChunked(batch, 0);
}

/** Batched throughput through the serving runtime at batch size B.
 *  If @p sim is non-null, additionally prices one fused batch on
 *  the Trinity-TFHE machine model (latency = max(compute, transfer)
 *  ledger cycles) and returns the amortized accelerator OPS. */
double
measureBatchedPbsOps(TfheGateBootstrapper &gb,
                     const runtime::BatchedBootstrapper &bb, size_t B,
                     const Budget &bd, SimPricing *sim)
{
    std::vector<LweCiphertext> cts;
    cts.reserve(B);
    for (size_t i = 0; i < B; ++i) {
        cts.push_back(gb.encryptBit(i % 2 == 0));
    }
    std::vector<LweCiphertext> out = runFullWidth(bb, cts); // warm
    Timer t;
    int batches = 0;
    while (batches < bd.minIters ||
           (t.elapsedMs() < bd.budgetMs && batches < bd.maxIters)) {
        out = runFullWidth(bb, out);
        ++batches;
    }
    double ops = 1000.0 * static_cast<double>(batches * B) /
                 t.elapsedMs();
    if (sim != nullptr) {
        // Re-run one fused batch under a real SimBackend: the
        // Ntt/Intt events only exist behind the ObservedBackend
        // decorator, so a bare observer would miss most of the work.
        auto &reg = BackendRegistry::instance();
        std::string prev = activeBackend().name();
        reg.use(std::make_unique<SimBackend>(reg.create("serial"),
                                             accel::trinityTfhe(4)));
        SimBackend &sb = *activeSimBackend();
        sb.ledger().reset();
        out = runFullWidth(bb, out);
        sim->ops = static_cast<double>(B) /
                   sb.seconds(sb.ledger().overlappedLatencyCycles());
        sim->seqCycles = sb.ledger().computeCycles();
        sim->overlappedCycles = sb.ledger().overlappedCycles();
        reg.select(prev);
    }
    return ops;
}

/** Sync-vs-stream A/B on a freshly built thread-pool engine: the same
 *  fused batch, first with eager record-order execution forced (every
 *  recorded command a blocking per-command barrier — narrower batches
 *  than PR 4's fused per-stage dispatches, so this isolates what the
 *  pipelined executor buys over a barrier per command, not a
 *  comparison against the old wide-batch path), then with the
 *  pipelined command-stream executor. */
void
measureThreadsSyncVsStream(TfheGateBootstrapper &gb, size_t B,
                           const Budget &bd, double *sync_ops,
                           double *stream_ops)
{
    auto &reg = BackendRegistry::instance();
    std::string prev = activeBackend().name();
    reg.use(std::make_unique<ThreadPoolBackend>());
    runtime::BatchedBootstrapper bb(gb);
    overrideStreams(0);
    *sync_ops = measureBatchedPbsOps(gb, bb, B, bd, nullptr);
    overrideStreams(1);
    *stream_ops = measureBatchedPbsOps(gb, bb, B, bd, nullptr);
    overrideStreams(-1);
    reg.select(prev);
}

/** Serving-latency tail: drive a live PbsServer with @p total
 *  concurrent submissions and report the request-latency and
 *  queue-wait histograms the server feeds (obs registry,
 *  "pbs_server.*") as p50/p99/p999 rows in milliseconds. Unlike the
 *  throughput rows above, these include queueing and batching delay —
 *  the number a serving deployment actually promises. */
void
measureServerLatency(TfheGateBootstrapper &gb, const std::string &set,
                     size_t total)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    obs::Histogram &lat = reg.histogram("pbs_server.request_latency_ns");
    obs::Histogram &qw = reg.histogram("pbs_server.queue_wait_ns");
    lat.reset();
    qw.reset();
    {
        runtime::PbsServer server(gb);
        std::vector<std::future<LweCiphertext>> futures;
        futures.reserve(total);
        for (size_t i = 0; i < total; ++i) {
            futures.push_back(server.submit(gb.encryptBit(i % 2 == 0)));
        }
        for (auto &f : futures) {
            f.get();
        }
    }
    const double to_ms = 1e-6;
    std::string metric = set + " request latency";
    row("PbsServer p50", metric,
        static_cast<double>(lat.percentile(0.50)) * to_ms, "ms",
        "measured");
    row("PbsServer p99", metric,
        static_cast<double>(lat.percentile(0.99)) * to_ms, "ms",
        "measured");
    row("PbsServer p999", metric,
        static_cast<double>(lat.percentile(0.999)) * to_ms, "ms",
        "measured");
    row("PbsServer queue-wait p99", set + " queue wait",
        static_cast<double>(qw.percentile(0.99)) * to_ms, "ms",
        "measured");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    // Smoke mode (the CI perf artifact): Set-I only, smaller batches,
    // tight iteration budgets — every row still measured live.
    const Budget seq_budget = args.smoke ? Budget{2, 150.0, 8}
                                         : Budget{8, 1000.0, 64};
    const Budget batch_budget = args.smoke ? Budget{1, 200.0, 4}
                                           : Budget{2, 800.0, 16};
    const size_t max_b = args.smoke ? 8 : 32;
    std::vector<size_t> batch_sizes = {1, 8};
    if (max_b > 8) {
        batch_sizes.push_back(max_b);
    }

    header("Table VII: Throughput for TFHE PBS (OPS)");
    for (const auto &r : accel::table7Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    std::vector<TfheParams> sets = {TfheParams::setI()};
    if (!args.smoke) {
        sets.push_back(TfheParams::setII());
        sets.push_back(TfheParams::setIII());
    }
    for (const auto &p : sets) {
        TfheGateBootstrapper gb(p, 90210);
        runtime::BatchedBootstrapper bb(gb);
        double baseline = measureCpuPbsOps(gb, seq_budget);
        row("Baseline-CPU (this host)", p.name, baseline, "OPS",
            "measured");
        double best_ops = 0;
        for (size_t B : batch_sizes) {
            SimPricing sim;
            double ops = measureBatchedPbsOps(
                gb, bb, B, batch_budget, B == max_b ? &sim : nullptr);
            row("Batched-CPU B=" + std::to_string(B), p.name, ops, "OPS",
                "measured");
            if (B == max_b) {
                best_ops = ops;
                row("Trinity-TFHE batched B=" + std::to_string(B),
                    p.name, sim.ops, "OPS", "sim-priced");
                // Sync-vs-stream makespans of the fused batch on the
                // machine model: sequential charging vs the live
                // list-scheduled stream, with the static scheduler's
                // idealized makespan alongside.
                std::string metric = p.name + " B=" +
                                     std::to_string(B) + " makespan";
                row("PBS-batch sync charge", metric, sim.seqCycles,
                    "cyc", "sim-priced");
                row("PBS-batch stream overlap", metric,
                    sim.overlappedCycles, "cyc", "sim-priced");
                row("PBS-batch static schedule", metric,
                    sim::schedule(pbsBatchGraph(p, B),
                                  accel::trinityTfhe(4))
                        .makespanCycles,
                    "cyc", "modelled");
            }
        }
        char speedup[128];
        std::snprintf(speedup, sizeof speedup,
                      "%s: batched B=%zu speedup over per-call baseline "
                      "= %.2fx",
                      p.name.c_str(), max_b, best_ops / baseline);
        note(speedup);
        // Live stage-overlap A/B on the thread-pool engine: the same
        // lockstep batch with a blocking barrier per recorded command
        // vs the pipelined command-stream executor.
        double sync_ops = 0;
        double stream_ops = 0;
        measureThreadsSyncVsStream(gb, max_b, batch_budget, &sync_ops,
                                   &stream_ops);
        row("Threads sync B=" + std::to_string(max_b), p.name, sync_ops,
            "OPS", "measured");
        row("Threads stream B=" + std::to_string(max_b), p.name,
            stream_ops, "OPS", "measured");
        std::snprintf(speedup, sizeof speedup,
                      "%s: stream executor speedup over per-command "
                      "blocking execution on threads = %.2fx",
                      p.name.c_str(), stream_ops / sync_ops);
        note(speedup);
        // Tail latency through the serving front end (queueing +
        // batching + execution), from the runtime's histograms.
        measureServerLatency(gb, p.name, args.smoke ? 32 : 256);
    }
    for (const auto &p : sets) {
        row("Morphling (this model)", p.name,
            pbsThroughputOps(accel::morphling(), p), "OPS",
            "simulated");
        row("Morphling_1GHz (model)", p.name,
            pbsThroughputOps(accel::morphling1GHz(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/o CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithoutCu(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/ CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithCu(), p), "OPS",
            "simulated");
        row("Trinity (this model)", p.name,
            pbsThroughputOps(accel::trinityTfhe(4), p), "OPS",
            "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("PBS", 0) == 0) {
            row(r.scheme + " (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note(std::string("host CPU rows run this repo's NTT-based PBS on "
                     "the active engine (TRINITY_BACKEND=") +
         activeBackend().name() +
         "); batched rows run the serving runtime's lockstep pipeline "
         "(src/runtime/), which shares each bootstrap-key GGSW across "
         "the whole batch");
    writeJsonReport(args, "table7_pbs_throughput");
    return 0;
}
