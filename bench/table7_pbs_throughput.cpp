/**
 * @file
 * Table VII: TFHE PBS throughput (operations per second) under the
 * Table IV parameter sets. Trinity, its CU ablations, and Morphling
 * are modelled; the CPU baseline is *measured live* by running this
 * repository's functional NTT-based PBS on the host.
 */

#include "accel/configs.h"
#include "accel/reported.h"
#include "bench/bench_util.h"
#include "tfhe/gates.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

namespace {

double
measureCpuPbsOps(const TfheParams &p)
{
    TfheGateBootstrapper gb(p, 90210);
    auto ct = gb.encryptBit(true);
    // Warm once, then time a few bootstraps.
    auto out = gb.bootstrapSign(ct);
    Timer t;
    const int iters = 3;
    for (int i = 0; i < iters; ++i) {
        out = gb.bootstrapSign(out);
    }
    return 1000.0 * iters / t.elapsedMs();
}

} // namespace

int
main()
{
    header("Table VII: Throughput for TFHE PBS (OPS)");
    for (const auto &r : accel::table7Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    const TfheParams sets[] = {TfheParams::setI(), TfheParams::setII(),
                               TfheParams::setIII()};
    for (const auto &p : sets) {
        row("Baseline-CPU (this host)", p.name, measureCpuPbsOps(p),
            "OPS", "measured");
    }
    for (const auto &p : sets) {
        row("Morphling (this model)", p.name,
            pbsThroughputOps(accel::morphling(), p), "OPS",
            "simulated");
        row("Morphling_1GHz (model)", p.name,
            pbsThroughputOps(accel::morphling1GHz(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/o CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithoutCu(), p), "OPS",
            "simulated");
        row("Trinity-TFHE w/ CU", p.name,
            pbsThroughputOps(accel::trinityTfheWithCu(), p), "OPS",
            "simulated");
        row("Trinity (this model)", p.name,
            pbsThroughputOps(accel::trinityTfhe(4), p), "OPS",
            "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("PBS", 0) == 0) {
            row(r.scheme + " (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note("host CPU rows use this repo's scalar NTT-based PBS (single "
         "thread, unoptimized) — same order as the paper's CPU rows");
    return 0;
}
