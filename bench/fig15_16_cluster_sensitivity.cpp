/**
 * @file
 * Fig. 15 + Fig. 16: sensitivity to the number of clusters —
 * normalized latency for CKKS / TFHE / hybrid applications, and
 * normalized area and power, at 2 / 4 / 8 clusters.
 */

#include <cstdio>

#include "accel/area.h"
#include "accel/configs.h"
#include "bench/bench_util.h"
#include "workload/apps.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

int
main()
{
    header("Fig. 15: normalized latency vs cluster count "
           "(normalized to 2 clusters)");
    std::printf("%-12s %10s %10s %10s\n", "Workload", "2 clusters",
                "4 clusters", "8 clusters");
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        double base = ckksAppMs(accel::trinityCkks(2), app);
        std::printf("%-12s %10.3f %10.3f %10.3f\n", app.name.c_str(),
                    1.0, ckksAppMs(accel::trinityCkks(4), app) / base,
                    ckksAppMs(accel::trinityCkks(8), app) / base);
    }
    auto p3 = TfheParams::setIII();
    for (size_t depth : {20u, 50u, 100u}) {
        double base = nnLatencyMs(accel::trinityTfhe(2), p3, depth);
        std::printf("NN-%-9zu %10.3f %10.3f %10.3f\n", depth, 1.0,
                    nnLatencyMs(accel::trinityTfhe(4), p3, depth) / base,
                    nnLatencyMs(accel::trinityTfhe(8), p3, depth) /
                        base);
    }
    // Hybrid rows are PBS-throughput dominated; scale by the
    // Set-III throughput ratio across cluster counts.
    {
        double o2 = pbsThroughputOps(accel::trinityTfhe(2), p3);
        double o4 = pbsThroughputOps(accel::trinityTfhe(4), p3);
        double o8 = pbsThroughputOps(accel::trinityTfhe(8), p3);
        for (size_t rows_n : {4096u, 16384u}) {
            std::printf("HE3DB-%-6zu %10.3f %10.3f %10.3f\n", rows_n,
                        1.0, o2 / o4, o2 / o8);
        }
    }
    note("paper: 4 -> 8 clusters gives 2.04x average speedup");

    header("Fig. 16: normalized area and power (to 2 clusters)");
    accel::AreaModel a2(2), a4(4), a8(8);
    std::printf("%-8s %10s %10s %10s\n", "", "2", "4", "8");
    std::printf("%-8s %10.3f %10.3f %10.3f\n", "area", 1.0,
                a4.totalArea() / a2.totalArea(),
                a8.totalArea() / a2.totalArea());
    std::printf("%-8s %10.3f %10.3f %10.3f\n", "power", 1.0,
                a4.totalPower() / a2.totalPower(),
                a8.totalPower() / a2.totalPower());
    note("paper: 2 clusters save 28% area / 36% power vs 4; 8 "
         "clusters roughly double area");
    return 0;
}
