/**
 * @file
 * Table VI: performance for CKKS workloads (ms) — Packed Bootstrapping,
 * HELR (per iteration), ResNet-20. Trinity and SHARP are modelled
 * first-principles on the cycle-level simulator; other rows are
 * published references.
 */

#include "accel/configs.h"
#include "accel/reported.h"
#include "bench/bench_util.h"
#include "workload/apps.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

int
main()
{
    header("Table VI: Performance for CKKS workloads (ms)");
    for (const auto &r : accel::table6Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    auto trin = accel::trinityCkks(4);
    auto shrp = accel::sharp();
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        row("SHARP (this model)", app.name, ckksAppMs(shrp, app), "ms",
            "simulated");
        row("Trinity (this model)", app.name, ckksAppMs(trin, app),
            "ms", "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric == "Bootstrap" || r.metric == "HELR" ||
            r.metric == "ResNet-20") {
            row("Trinity (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    double speedup = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        speedup += ckksAppMs(shrp, app) / ckksAppMs(trin, app);
    }
    note("average modelled speedup over SHARP: " +
         std::to_string(speedup / 3.0) + "x (paper: 1.49x)");
    return 0;
}
