/**
 * @file
 * Fig. 1: utilization of F1-like vs FAB-like NTT units across
 * polynomial lengths 2^8 .. 2^16 (butterfly-stage granularity).
 */

#include <cstdio>

#include "accel/ntt_util.h"
#include "bench/bench_util.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Fig. 1: NTT unit utilization vs polynomial length");
    std::printf("%-8s %12s %12s\n", "N", "F1-like", "FAB-like");
    for (unsigned lg = 8; lg <= 16; ++lg) {
        size_t n = 1ULL << lg;
        std::printf("2^%-6u %12.3f %12.3f\n", lg,
                    accel::f1LikeNttUtil(n), accel::fabLikeNttUtil(n));
    }
    note("paper shape: F1-like rises toward N=2^16; FAB-like peaks at "
         "short lengths and decays");
    return 0;
}
