/**
 * @file
 * Microbenchmarks (google-benchmark) for the transform engines — the
 * CPU-side kernel costs that back the Baseline rows: reference NTT,
 * constant-geometry NTT, four-step NTT, and double-precision FFT.
 */

#include <benchmark/benchmark.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/cg_ntt.h"
#include "poly/fft.h"
#include "poly/four_step.h"

namespace trinity {
namespace {

void
BM_NttForward(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    NttTable table(n, Modulus(q));
    Rng rng(1);
    auto a = rng.uniformVec(n, q);
    for (auto _ : state) {
        table.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<i64>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void
BM_NttRoundtrip(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    NttTable table(n, Modulus(q));
    Rng rng(2);
    auto a = rng.uniformVec(n, q);
    for (auto _ : state) {
        table.forward(a);
        table.inverse(a);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_NttRoundtrip)->Arg(1024)->Arg(65536);

void
BM_CgNttForward(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    CgNtt cg(n, Modulus(q));
    Rng rng(3);
    auto a = rng.uniformVec(n, q);
    for (auto _ : state) {
        cg.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_CgNttForward)->Arg(1024)->Arg(4096);

void
BM_FourStepForward(benchmark::State &state)
{
    size_t n1 = static_cast<size_t>(state.range(0));
    size_t n2 = static_cast<size_t>(state.range(1));
    size_t n = n1 * n2;
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    FourStepNtt fs(n1, n2, Modulus(q));
    Rng rng(4);
    auto a = rng.uniformVec(n, q);
    for (auto _ : state) {
        fs.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_FourStepForward)
    ->Args({256, 4})
    ->Args({256, 16})
    ->Args({256, 256});

void
BM_FftNegacyclicConvolution(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Rng rng(5);
    std::vector<i64> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<i64>(rng.uniform(1 << 20)) - (1 << 19);
        b[i] = static_cast<i64>(rng.uniform(1 << 20)) - (1 << 19);
    }
    for (auto _ : state) {
        auto c = negacyclicConvolutionFft(a, b);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_FftNegacyclicConvolution)->Arg(1024)->Arg(2048);

} // namespace
} // namespace trinity

BENCHMARK_MAIN();
