/**
 * @file
 * Single-thread non-NTT hot-kernel throughput: the table-driven
 * Galois automorphism and the two BConv phases (Shoup scaling pass 1,
 * lazily folded u128 matrix-product pass 2), per SIMD dispatch level,
 * against the serial reference engine (direct index map, term-by-term
 * reduced accumulate — the recurrences every engine is verified
 * against). The acceptance gate reads auto.speedup and
 * bconv_p2.speedup: avx2 >= 2x and avx512 >= 3x serial at N=4096.
 *
 * Usage: bench_micro_kernels [--smoke] [--json=PATH] [N [limbs [reps]]]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "backend/auto_table.h"
#include "backend/scratch_arena.h"
#include "backend/serial_backend.h"
#include "backend/simd_backend.h"
#include "backend/simd_kernels.h"
#include "bench/bench_util.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/rns.h"

using namespace trinity;

namespace {

size_t
positionalOr(const bench::BenchArgs &args, size_t idx, size_t fallback)
{
    return idx < args.positional.size()
               ? std::strtoul(args.positional[idx].c_str(), nullptr, 10)
               : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    size_t n = positionalOr(args, 0, 4096);
    size_t limbs = positionalOr(args, 1, 8);
    size_t reps = positionalOr(args, 2, args.smoke ? 100 : 2000);

    std::vector<u64> qs = findNttPrimes(45, 2 * n, limbs);
    std::vector<u64> ps = findNttPrimes(50, 2 * n, limbs);
    BaseConverter bconv(qs, ps);
    BConvPlan plan = bconv.plan();
    Modulus q0(qs[0]);
    auto table = AutoTableCache::get(n, 5);

    Rng rng(42);
    std::vector<u64> src = rng.uniformVec(n, qs[0]);
    std::vector<u64> dst(n);
    std::vector<std::vector<u64>> x(limbs);
    std::vector<const u64 *> in;
    for (size_t i = 0; i < limbs; ++i) {
        x[i] = rng.uniformVec(n, qs[i]);
        in.push_back(x[i].data());
    }
    std::vector<u64> v(limbs * n); // pass-1 scratch, limb-major
    std::vector<std::vector<u64>> y(limbs, std::vector<u64>(n));
    std::vector<u64 *> out;
    for (auto &row : y) {
        out.push_back(row.data());
    }

    bench::header("micro_kernels: non-NTT hot kernels per SIMD level");
    bench::note("N=" + std::to_string(n) +
                ", limbs=" + std::to_string(limbs) +
                ", reps=" + std::to_string(reps) +
                " (single thread; speedups vs the serial reference)");
    bench::note("simd dispatch: available levels = " +
                simd::availableLevels() + ", auto = " +
                simd::levelName(simd::bestAvailableLevel()));

    // Each config times the same four kernels; serial runs the
    // reference recurrences, the simd rows the KernelSet of one level.
    struct Config
    {
        std::string label;
        std::function<double()> autoMs, p1Ms, p2Ms, convMs;
    };
    std::vector<Config> configs;

    static SerialBackend serial;
    configs.push_back(
        {"serial",
         [&, reps] {
             AutoJob job{dst.data(), src.data(), &q0, n, 5};
             bench::Timer t;
             for (size_t r = 0; r < reps; ++r) {
                 serial.automorphismBatch(&job, 1);
             }
             return t.elapsedMs();
         },
         [&, reps] {
             bench::Timer t;
             for (size_t r = 0; r < reps; ++r) {
                 for (size_t i = 0; i < limbs; ++i) {
                     const Modulus &qi = plan.fromMods[i];
                     u64 *vi = v.data() + i * n;
                     for (size_t c = 0; c < n; ++c) {
                         vi[c] = qi.mulShoup(in[i][c], plan.qhatInv[i],
                                             plan.qhatInvPrecon[i]);
                     }
                 }
             }
             return t.elapsedMs();
         },
         [&, reps] {
             bench::Timer t;
             for (size_t r = 0; r < reps; ++r) {
                 for (size_t j = 0; j < limbs; ++j) {
                     const Modulus &pj = plan.toMods[j];
                     for (size_t c = 0; c < n; ++c) {
                         u128 acc = 0;
                         for (size_t i = 0; i < limbs; ++i) {
                             acc += static_cast<u128>(
                                        pj.reduce(v[i * n + c])) *
                                    plan.qhatModP[i * limbs + j];
                         }
                         out[j][c] = pj.reduce128(acc);
                     }
                 }
             }
             return t.elapsedMs();
         },
         [&, reps] {
             bench::Timer t;
             for (size_t r = 0; r < reps; ++r) {
                 serial.baseConvert(plan, in.data(), out.data(), n);
             }
             return t.elapsedMs();
         }});

    for (simd::Level level :
         {simd::Level::Scalar, simd::Level::Avx2, simd::Level::Avx512}) {
        if (!simd::levelAvailable(level)) {
            continue;
        }
        const simd::KernelSet *ks = &simd::kernelsForLevel(level);
        auto engine = std::make_shared<SimdBackend>(level);
        configs.push_back(
            {std::string("simd-") + simd::levelName(level),
             [&, engine, reps] {
                 AutoJob job{dst.data(), src.data(), &q0, n, 5};
                 bench::Timer t;
                 for (size_t r = 0; r < reps; ++r) {
                     engine->automorphismBatch(&job, 1);
                 }
                 return t.elapsedMs();
             },
             [&, ks, reps] {
                 bench::Timer t;
                 for (size_t r = 0; r < reps; ++r) {
                     for (size_t i = 0; i < limbs; ++i) {
                         ks->bconvPass1(v.data() + i * n, in[i],
                                       plan.qhatInv[i],
                                       plan.qhatInvPrecon[i],
                                       plan.fromMods[i], n);
                     }
                 }
                 return t.elapsedMs();
             },
             [&, ks, reps] {
                 bench::Timer t;
                 for (size_t r = 0; r < reps; ++r) {
                     for (size_t j = 0; j < limbs; ++j) {
                         ks->bconvPass2(out[j], v.data(), n, limbs,
                                       plan.qhatModP + j, limbs,
                                       plan.toMods[j], n);
                     }
                 }
                 return t.elapsedMs();
             },
             [&, engine, reps] {
                 bench::Timer t;
                 for (size_t r = 0; r < reps; ++r) {
                     engine->baseConvert(plan, in.data(), out.data(),
                                         n);
                 }
                 return t.elapsedMs();
             }});
    }

    double base_auto = 0;
    double base_p1 = 0;
    double base_p2 = 0;
    double base_conv = 0;
    for (const Config &cfg : configs) {
        cfg.autoMs(); // warm: tables, converter constants, caches
        double auto_ms = cfg.autoMs();
        double p1_ms = cfg.p1Ms();
        double p2_ms = cfg.p2Ms();
        // Allocation accounting next to the cycles: the full-BConv
        // loop runs over the pooled scratch arena; with the slab
        // warmed, every acquire should hit the pool. allocs/op is
        // arena misses per conversion — 0 in steady state.
        double conv_ms = cfg.convMs(); // warms the arena slab
        ScratchArena::resetStats();
        conv_ms = cfg.convMs();
        auto arena = ScratchArena::stats();
        if (cfg.label == "serial") {
            base_auto = auto_ms;
            base_p1 = p1_ms;
            base_p2 = p2_ms;
            base_conv = conv_ms;
        }
        double coeffs = static_cast<double>(n) * reps;
        bench::row(cfg.label, "auto.thru", coeffs / (auto_ms / 1000.0),
                   "coef/s", "measured");
        bench::row(cfg.label, "auto.speedup",
                   auto_ms > 0 ? base_auto / auto_ms : 0, "x",
                   "measured");
        bench::row(cfg.label, "bconv_p1.speedup",
                   p1_ms > 0 ? base_p1 / p1_ms : 0, "x", "measured");
        bench::row(cfg.label, "bconv_p2.speedup",
                   p2_ms > 0 ? base_p2 / p2_ms : 0, "x", "measured");
        bench::row(cfg.label, "bconv.full.speedup",
                   conv_ms > 0 ? base_conv / conv_ms : 0, "x",
                   "measured");
        bench::row(cfg.label, "bconv.allocs_per_op",
                   reps > 0 ? static_cast<double>(arena.misses) / reps
                            : 0,
                   "allocs", "measured");
        bench::row(cfg.label, "bconv.arena_hits_per_op",
                   reps > 0 ? static_cast<double>(arena.hits) / reps
                            : 0,
                   "hits", "measured");
    }
    bench::writeJsonReport(args, "micro_kernels");
    return 0;
}
