/**
 * @file
 * Microbenchmarks (google-benchmark) for the FHE operation layer:
 * CKKS HMult / HRotate / keyswitch, BConv, TFHE external product and
 * full PBS — the CPU costs behind the measured Baseline rows.
 */

#include <benchmark/benchmark.h>

#include "ckks/evaluator.h"
#include "common/primes.h"
#include "tfhe/gates.h"

namespace trinity {
namespace {

struct CkksBenchState
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksKeyGenerator> keygen;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<CkksEncryptor> enc;
    std::unique_ptr<CkksEvaluator> eval;
    CkksEvalKey relin;
    CkksEvalKey rot;
    CkksCiphertext ct;

    static CkksBenchState &
    instance()
    {
        static CkksBenchState s = [] {
            CkksBenchState st;
            st.ctx = std::make_shared<CkksContext>(
                CkksParams::testMedium());
            st.keygen =
                std::make_unique<CkksKeyGenerator>(st.ctx, 1234);
            st.encoder = std::make_unique<CkksEncoder>(st.ctx);
            st.enc = std::make_unique<CkksEncryptor>(
                st.ctx, st.keygen->makePublicKey(), 1235);
            st.eval = std::make_unique<CkksEvaluator>(st.ctx);
            st.relin = st.keygen->makeRelinKey();
            st.rot = st.keygen->makeRotationKey(1);
            std::vector<cd> z(16, cd(0.5, 0.25));
            st.ct = st.enc->encrypt(st.encoder->encode(
                z, st.ctx->params().maxLevel));
            return st;
        }();
        return s;
    }
};

void
BM_CkksHMult(benchmark::State &state)
{
    auto &s = CkksBenchState::instance();
    for (auto _ : state) {
        auto prod = s.eval->multiply(s.ct, s.ct, s.relin);
        benchmark::DoNotOptimize(&prod);
    }
}
BENCHMARK(BM_CkksHMult)->Unit(benchmark::kMillisecond);

void
BM_CkksHRotate(benchmark::State &state)
{
    auto &s = CkksBenchState::instance();
    for (auto _ : state) {
        auto r = s.eval->rotate(s.ct, 1, s.rot);
        benchmark::DoNotOptimize(&r);
    }
}
BENCHMARK(BM_CkksHRotate)->Unit(benchmark::kMillisecond);

void
BM_CkksKeySwitch(benchmark::State &state)
{
    auto &s = CkksBenchState::instance();
    RnsPoly d = s.ct.c1;
    d.toCoeff();
    for (auto _ : state) {
        auto [a, b] = s.eval->keySwitch(d, s.relin,
                                        s.ctx->params().maxLevel);
        benchmark::DoNotOptimize(&a);
        benchmark::DoNotOptimize(&b);
    }
}
BENCHMARK(BM_CkksKeySwitch)->Unit(benchmark::kMillisecond);

void
BM_BConv(benchmark::State &state)
{
    size_t n = 4096;
    auto from = findNttPrimes(36, 2 * n, 4);
    auto to = findNttPrimes(37, 2 * n, 4);
    BaseConverter bc(from, to);
    Rng rng(6);
    std::vector<Poly> in;
    for (u64 q : from) {
        in.push_back(Poly::uniform(n, q, rng));
    }
    for (auto _ : state) {
        auto out = bc.convert(in);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_BConv)->Unit(benchmark::kMicrosecond);

struct TfheBenchState
{
    std::unique_ptr<TfheGateBootstrapper> gb;
    LweCiphertext ct;

    static TfheBenchState &
    instance()
    {
        static TfheBenchState s = [] {
            TfheBenchState st;
            st.gb = std::make_unique<TfheGateBootstrapper>(
                TfheParams::testTiny(), 55);
            st.ct = st.gb->encryptBit(true);
            return st;
        }();
        return s;
    }
};

void
BM_TfheExternalProduct(benchmark::State &state)
{
    auto &s = TfheBenchState::instance();
    auto &ctx = s.gb->context();
    Poly m(ctx.params().bigN, ctx.q());
    m[0] = ctx.q() / 4;
    auto glwe = ctx.glweTrivial(m);
    const auto &ggsw = s.gb->bootstrapKey().bsk[0];
    for (auto _ : state) {
        auto out = ctx.externalProduct(ggsw, glwe);
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_TfheExternalProduct)->Unit(benchmark::kMicrosecond);

void
BM_TfhePbs(benchmark::State &state)
{
    auto &s = TfheBenchState::instance();
    for (auto _ : state) {
        auto out = s.gb->bootstrapSign(s.ct);
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_TfhePbs)->Unit(benchmark::kMillisecond);

void
BM_TfheGateNand(benchmark::State &state)
{
    auto &s = TfheBenchState::instance();
    auto c2 = s.gb->encryptBit(false);
    for (auto _ : state) {
        auto out = s.gb->gateNand(s.ct, c2);
        benchmark::DoNotOptimize(&out);
    }
}
BENCHMARK(BM_TfheGateNand)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace trinity

BENCHMARK_MAIN();
