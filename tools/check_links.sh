#!/usr/bin/env bash
# Fail on dead relative links in the repo's markdown docs.
#
# Extracts every inline markdown link target from README.md and
# docs/*.md, skips external schemes (http/https/mailto) and pure
# in-page anchors, strips anchors from relative targets, resolves
# them against the containing file's directory, and requires the
# result to exist. Usage: tools/check_links.sh [repo-root]

set -u
root="${1:-.}"
cd "$root" || exit 1

fail=0
checked=0
for f in README.md docs/*.md; do
    [ -e "$f" ] || continue
    dir=$(dirname "$f")
    # Inline links only: [text](target). Reference-style links are
    # not used in this repo. Fenced code blocks are skipped — lambda
    # captures like [&](T x) would otherwise parse as links.
    targets=$(awk '/^```/ { fence = !fence; next } !fence' "$f" |
        grep -o ']([^)]*)' | sed 's/^](//; s/)$//')
    while IFS= read -r t; do
        [ -n "$t" ] || continue
        case "$t" in
            http://*|https://*|mailto:*) continue ;;
            '#'*) continue ;;
        esac
        path="${t%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "DEAD LINK: $f -> $t" >&2
            fail=1
        fi
    done <<EOF
$targets
EOF
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed" >&2
    exit 1
fi
echo "link check: $checked relative links OK"
